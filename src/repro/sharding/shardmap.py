"""The shard map: versioned key ranges over the shard-key attribute.

Objects are placed by the value of one string attribute (by convention
the taxon's ``rank`` or classification path — the paper's polyhierarchy
makes taxon subtrees the natural partitioning unit).  The keyspace is
covered by contiguous half-open string ranges ``[lo, hi)``; an object
whose key is missing (``None``) or non-string falls back to a
deterministic hash over its OID, so unclassified specimens still land
somewhere stable.

The map carries an ``epoch`` that rises monotonically on every split or
rebalance.  The epoch is stamped into each shard's log as a
``KIND_META`` entry (see :meth:`repro.storage.store.ObjectStore.
stamp_shard_map`) and participates in the HTTP response-cache stamp, so
a rebalance invalidates every pre-serialized body that could reflect
the old placement.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass


class ShardMapError(ValueError):
    """Raised for malformed or non-covering shard maps."""


@dataclass(frozen=True)
class ShardRange:
    """Half-open key range ``[lo, hi)`` owned by ``shard``.

    ``lo is None`` means unbounded below; ``hi is None`` unbounded
    above.  A single range ``(None, None)`` covers the whole keyspace.
    """

    shard: str
    lo: str | None
    hi: str | None

    def contains(self, key: str) -> bool:
        if self.lo is not None and key < self.lo:
            return False
        if self.hi is not None and key >= self.hi:
            return False
        return True

    def overlaps(self, lo: str | None, hi: str | None) -> bool:
        """Does this range intersect the half-open interval ``[lo, hi)``?"""
        if self.lo is not None and hi is not None and hi <= self.lo:
            return False
        if self.hi is not None and lo is not None and lo >= self.hi:
            return False
        return True


def _prefix_upper(prefix: str) -> str | None:
    """Smallest string greater than every string starting with ``prefix``.

    Returns None when no finite upper bound exists (prefix made solely
    of U+10FFFF code points).
    """
    chars = list(prefix)
    while chars:
        code = ord(chars[-1])
        if code < 0x10FFFF:
            chars[-1] = chr(code + 1)
            return "".join(chars)
        chars.pop()
    return None


class ShardMap:
    """Contiguous, fully-covering key ranges plus a hash fallback ring."""

    def __init__(
        self,
        key_attr: str,
        ranges: list[ShardRange] | tuple[ShardRange, ...],
        epoch: int = 1,
    ) -> None:
        ordered = tuple(ranges)
        if not ordered:
            raise ShardMapError("shard map needs at least one range")
        if ordered[0].lo is not None or ordered[-1].hi is not None:
            raise ShardMapError(
                "shard ranges must cover the whole keyspace "
                "(first lo and last hi must be unbounded)"
            )
        for left, right in zip(ordered, ordered[1:]):
            if left.hi is None or right.lo is None or left.hi != right.lo:
                raise ShardMapError(
                    f"shard ranges must be contiguous: "
                    f"{left.shard}[..{left.hi!r}) then "
                    f"{right.shard}[{right.lo!r}..)"
                )
            if left.hi is not None and left.lo is not None:
                if left.hi <= left.lo:
                    raise ShardMapError(
                        f"empty range for shard {left.shard!r}"
                    )
        self.key_attr = key_attr
        self.ranges = ordered
        self.epoch = int(epoch)
        # Deterministic fallback ring: every shard that owns a range,
        # in sorted-name order (stable across topology rebuilds).
        self.shards: tuple[str, ...] = tuple(
            sorted({r.shard for r in ordered})
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def single(cls, shard: str, key_attr: str = "rank") -> "ShardMap":
        """A one-shard map (the degenerate 1-shard topology)."""
        return cls(key_attr, [ShardRange(shard, None, None)])

    @classmethod
    def uniform(
        cls,
        shards: list[str] | tuple[str, ...],
        key_attr: str,
        split_points: list[str] | tuple[str, ...],
    ) -> "ShardMap":
        """N shards split at N-1 ascending key points."""
        if len(split_points) != len(shards) - 1:
            raise ShardMapError(
                f"{len(shards)} shards need {len(shards) - 1} split "
                f"points, got {len(split_points)}"
            )
        bounds: list[str | None] = [None, *split_points, None]
        ranges = [
            ShardRange(shard, bounds[i], bounds[i + 1])
            for i, shard in enumerate(shards)
        ]
        return cls(key_attr, ranges)

    # -- routing -------------------------------------------------------------

    def shard_for_key(self, key: str) -> str:
        for r in self.ranges:
            if r.contains(key):
                return r.shard
        raise ShardMapError(f"no range covers key {key!r}")  # unreachable

    def fallback_shard(self, oid: int) -> str:
        """Deterministic hash placement for unclassified objects."""
        digest = zlib.crc32(str(int(oid)).encode("ascii"))
        return self.shards[digest % len(self.shards)]

    def route(self, key: object, oid: int) -> str:
        """Place an object: range by string key, hash fallback otherwise."""
        if isinstance(key, str):
            return self.shard_for_key(key)
        return self.fallback_shard(oid)

    # -- pruning -------------------------------------------------------------

    def shards_for_equality(self, value: object) -> tuple[str, ...]:
        """Shards that can hold an object whose key equals ``value``.

        A non-string value (including None) means the object was hash
        placed, so every shard is a candidate.
        """
        if not isinstance(value, str):
            return self.shards
        hits = [r.shard for r in self.ranges if r.contains(value)]
        return tuple(dict.fromkeys(hits))

    def shards_for_prefix(self, prefix: str) -> tuple[str, ...]:
        """Shards whose range intersects keys starting with ``prefix``."""
        if not prefix:
            return self.shards
        upper = _prefix_upper(prefix)
        hits = [
            r.shard for r in self.ranges if r.overlaps(prefix, upper)
        ]
        return tuple(dict.fromkeys(hits))

    # -- evolution -----------------------------------------------------------

    def split(self, shard: str, point: str, new_shard: str) -> "ShardMap":
        """Split ``shard``'s range at ``point``; the upper half moves to
        ``new_shard``.  Returns a new map with epoch + 1."""
        out: list[ShardRange] = []
        found = False
        for r in self.ranges:
            if r.shard == shard and r.contains(point):
                if r.lo is not None and point <= r.lo:
                    raise ShardMapError(
                        f"split point {point!r} at or below range floor"
                    )
                out.append(ShardRange(shard, r.lo, point))
                out.append(ShardRange(new_shard, point, r.hi))
                found = True
            else:
                out.append(r)
        if not found:
            raise ShardMapError(
                f"shard {shard!r} has no range containing {point!r}"
            )
        return ShardMap(self.key_attr, out, epoch=self.epoch + 1)

    def reassign(
        self, lo: str | None, hi: str | None, new_shard: str
    ) -> "ShardMap":
        """Hand every range exactly matching ``[lo, hi)`` to ``new_shard``
        (a rebalance that moves a whole range).  Epoch + 1."""
        out = []
        found = False
        for r in self.ranges:
            if r.lo == lo and r.hi == hi:
                out.append(ShardRange(new_shard, lo, hi))
                found = True
            else:
                out.append(r)
        if not found:
            raise ShardMapError(f"no range [{lo!r}, {hi!r}) in map")
        return ShardMap(self.key_attr, out, epoch=self.epoch + 1)

    # -- serialization -------------------------------------------------------

    def to_blob(self) -> bytes:
        doc = {
            "epoch": self.epoch,
            "key_attr": self.key_attr,
            "ranges": [[r.shard, r.lo, r.hi] for r in self.ranges],
        }
        return json.dumps(doc, sort_keys=True).encode("utf-8")

    @classmethod
    def from_blob(cls, blob: bytes) -> "ShardMap":
        try:
            doc = json.loads(blob.decode("utf-8"))
            ranges = [
                ShardRange(shard, lo, hi)
                for shard, lo, hi in doc["ranges"]
            ]
            return cls(doc["key_attr"], ranges, epoch=doc["epoch"])
        except (ValueError, KeyError, TypeError) as exc:
            raise ShardMapError(f"bad shard-map blob: {exc}") from exc

    def describe(self) -> dict[str, object]:
        """JSON-friendly summary (CLI ``.shardmap``, distributed EXPLAIN)."""
        return {
            "epoch": self.epoch,
            "key_attr": self.key_attr,
            "shards": list(self.shards),
            "ranges": [
                {"shard": r.shard, "lo": r.lo, "hi": r.hi}
                for r in self.ranges
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        spans = ", ".join(
            f"{r.shard}[{r.lo!r}:{r.hi!r})" for r in self.ranges
        )
        return f"<ShardMap epoch={self.epoch} key={self.key_attr} {spans}>"
