"""Horizontal sharding: partition the flora across nodes by taxon-subtree
ranges and run POOL queries scatter-gather across the shards.

The package splits into four layers:

- :mod:`repro.sharding.shardmap` — the versioned shard map: half-open
  key ranges over the rank/classification-path attribute, plus a
  deterministic hash fallback for unclassified objects.  Persisted as a
  ``KIND_META`` entry so replicas learn the topology from the log.
- :mod:`repro.sharding.router` — the OID → shard routing table the
  coordinator maintains as objects are created and rebalanced.
- :mod:`repro.sharding.planner` — classifies a parsed POOL query into a
  distributed physical plan: ``scatter`` (push the scan to every
  relevant shard, merge centrally), ``scatter_count`` (push ``count``
  and sum), or ``gather`` (materialize a coordinator-side union view
  and run the retained naive evaluator — the fallback that keeps every
  construct correct).
- :mod:`repro.sharding.coordinator` — executes those plans over
  federation's breakers and deadline fan-out, owns the global OID
  allocator (so topologies are byte-comparable), and applies sessions
  and rebalances deterministically.
- :mod:`repro.sharding.rebalance` — ships extents between shards over
  the PLSB replication frame codec (CRC-gated), bumping the shard-map
  epoch so response caches can never serve a pre-move body.
"""

from .shardmap import ShardMap, ShardMapError, ShardRange
from .router import OidRouter
from .planner import DistributedPlan, DistributedPlanner
from .coordinator import (
    LocalShardClient,
    ShardedDatabase,
    ShardedSession,
    ShardExecutionError,
    ShardingError,
)
from .rebalance import ExtentRebalancer, RebalanceReport

__all__ = [
    "DistributedPlan",
    "DistributedPlanner",
    "ExtentRebalancer",
    "LocalShardClient",
    "OidRouter",
    "RebalanceReport",
    "ShardExecutionError",
    "ShardMap",
    "ShardMapError",
    "ShardRange",
    "ShardedDatabase",
    "ShardedSession",
    "ShardingError",
]
