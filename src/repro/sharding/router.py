"""OID → shard routing table.

The shard map places objects by *key*; once placed, cross-shard
operations (relationship resolution, rebalancing, key-attribute
updates) need the reverse direction: given an OID, which shard holds
it now?  The coordinator records every placement here and updates it
when a rebalance or a key change moves an object.
"""

from __future__ import annotations


class OidRouter:
    """Mutable OID → shard-name table with deterministic grouping."""

    def __init__(self) -> None:
        self._table: dict[int, str] = {}

    def assign(self, oid: int, shard: str) -> None:
        self._table[oid] = shard

    def move(self, oid: int, shard: str) -> None:
        if oid not in self._table:
            raise KeyError(f"oid {oid} is not routed")
        self._table[oid] = shard

    def forget(self, oid: int) -> None:
        self._table.pop(oid, None)

    def shard_of(self, oid: int) -> str | None:
        return self._table.get(oid)

    def group(self, oids) -> dict[str, list[int]]:
        """Group OIDs by owning shard; shard names and OID lists are both
        sorted so fan-outs iterate deterministically.  Unrouted OIDs are
        dropped (dangling references resolve to null downstream, exactly
        as the evaluator treats a missing endpoint)."""
        buckets: dict[str, list[int]] = {}
        for oid in oids:
            shard = self._table.get(oid)
            if shard is not None:
                buckets.setdefault(shard, []).append(oid)
        return {
            shard: sorted(buckets[shard]) for shard in sorted(buckets)
        }

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for shard in self._table.values():
            out[shard] = out.get(shard, 0) + 1
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, oid: int) -> bool:
        return oid in self._table
