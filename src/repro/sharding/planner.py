"""Distributed physical plans for POOL queries over a sharded flora.

The classifier is deliberately conservative: a query is *pushed down*
(``scatter``) only when per-shard execution plus a deterministic
central merge provably reproduces the single-database answer.
Everything else routes through ``gather`` — the coordinator
materializes a union snapshot view of the shards and runs the retained
naive evaluator over it, which is correct for every construct by
definition.  The classification depends only on the query AST and the
shard map, so 1-shard and 4-shard topologies always agree on the mode.

Why scatter-merge is exact (the pushdown proof, relied on by the
topology differential suite):

- Extents iterate in OID order and the evaluator's sort is *stable*,
  so a single-database ``order by K`` result is ordered by ``(K, oid)``.
- Each shard, given the same query, returns its rows ordered by
  ``(K, oid)`` restricted to its objects.  The union of per-shard
  ``limit n`` prefixes under ``(K, oid)`` is a superset of the global
  first ``n`` rows under ``(K, oid)``.
- The coordinator therefore concatenates shard rows, re-sorts by OID,
  recomputes the sort keys and projection exactly as the naive
  evaluator would, stable-sorts, and applies distinct/limit centrally.

Constructs excluded from scatter (routed to gather) and why:

- Traversals, ``exists``, subqueries, extra class extents: touch
  objects that may live on other shards.
- Downcast: class identity is per-schema, so a coordinator-side
  downcast over shard-born objects would silently filter everything.
- ``roles()`` / ``synonyms_of()``: read coordinator-side registries.
- Aggregates other than ``count(<scalar>)``: float sums are not
  associative bytewise; per-row collection mapping changes semantics.
- ``group by`` / set operations / ``extract graph``: need the whole
  extent in one place.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from ..core.schema import Schema
from ..query.nodes import (
    AttributeAccess,
    Binary,
    Binding,
    Downcast,
    ExistsExpr,
    ExtractGraphQuery,
    FunctionCall,
    Literal,
    MethodCall,
    Node,
    OrderItem,
    ProjectionItem,
    SelectQuery,
    SetOperation,
    Traversal,
    Variable,
)
from .shardmap import ShardMap

#: Context-registry functions that cannot run shard-side.
_CONTEXT_FUNCTIONS = frozenset({"roles", "synonyms_of"})


def _walk(node: Any):
    """Yield every AST node in the tree (generic dataclass recursion)."""
    if not isinstance(node, Node):
        return
    yield node
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, (tuple, list)):
            for item in value:
                yield from _walk(item)
        else:
            yield from _walk(value)


@dataclass(frozen=True)
class DistributedPlan:
    """A physical plan for one query over the current shard map."""

    mode: str  # "scatter" | "scatter_count" | "gather"
    shards: tuple[str, ...]  # fan-out targets (pruned for scatter)
    pushed_text: str | None = None  # per-shard POOL text (scatter modes)
    push_order: bool = False  # ORDER BY shipped with the pushdown
    push_limit: bool = False  # LIMIT shipped with the pushdown
    pruned: bool = False  # shard set narrowed by the key predicate
    reason: str = ""  # why this mode was chosen

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly shape for distributed EXPLAIN output."""
        out: dict[str, Any] = {
            "mode": self.mode,
            "shards": list(self.shards),
            "pruned": self.pruned,
            "reason": self.reason,
        }
        if self.pushed_text is not None:
            out["pushed_query"] = self.pushed_text
            out["push_order"] = self.push_order
            out["push_limit"] = self.push_limit
        return out


class DistributedPlanner:
    """Classify a parsed query into a :class:`DistributedPlan`."""

    def __init__(self, schema: Schema, shard_map: ShardMap) -> None:
        self.schema = schema
        self.map = shard_map

    # -- public --------------------------------------------------------------

    def plan(self, query: Node, as_of: int | None = None) -> DistributedPlan:
        gather = self._gather_reason(query, as_of)
        if gather is not None:
            return DistributedPlan(
                mode="gather", shards=self.map.shards, reason=gather
            )
        assert isinstance(query, SelectQuery)
        binding = query.bindings[0]
        shards, pruned = self._prune(query, binding)
        if self._count_pushdown(query):
            pushed = dataclasses.replace(
                query, order_by=(), limit=None
            )
            return DistributedPlan(
                mode="scatter_count",
                shards=shards,
                pushed_text=pushed.unparse(),
                pruned=pruned,
                reason="count pushdown: per-shard counts sum exactly",
            )
        push_order = bool(query.order_by) and (
            query.limit is not None and not query.distinct
        )
        push_limit = (
            query.limit is not None
            and not query.distinct
            and (push_order or not query.order_by)
        )
        pushed = dataclasses.replace(
            query,
            projection=(
                ProjectionItem(Variable(binding.variable), None),
            ),
            distinct=False,
            order_by=query.order_by if push_order else (),
            limit=query.limit if push_limit else None,
        )
        return DistributedPlan(
            mode="scatter",
            shards=shards,
            pushed_text=pushed.unparse(),
            push_order=push_order,
            push_limit=push_limit,
            pruned=pruned,
            reason="single-extent scan: merge by (key, oid) is exact",
        )

    # -- classification ------------------------------------------------------

    def _gather_reason(
        self, query: Node, as_of: int | None
    ) -> str | None:
        """Why this query must gather — or None if scatter is safe."""
        if as_of is not None:
            return "as_of: time travel reads a coordinator union snapshot"
        if isinstance(query, (SetOperation, ExtractGraphQuery)):
            return "set operation / graph extraction needs the whole extent"
        if not isinstance(query, SelectQuery):
            return f"unknown query form {type(query).__name__}"
        if query.group_by or query.having is not None:
            return "group by partitions rows across shards"
        if len(query.bindings) != 1:
            return "multi-binding product may join across shards"
        binding = query.bindings[0]
        source = binding.source
        if not isinstance(source, Variable):
            return "binding source is not a class extent"
        if not self.schema.has_class(source.name):
            # Let shard-side/naive execution produce the real error.
            return f"unknown extent {source.name!r}"
        if self.schema.get_class(source.name).is_relationship_class:
            return "relationship extents span shard boundaries"
        for node in _walk(query):
            if node is source:
                continue
            if isinstance(node, (Traversal, ExistsExpr, Downcast)):
                return (
                    f"{type(node).__name__} may cross shard boundaries"
                )
            if isinstance(node, MethodCall):
                return "method calls may traverse relationships"
            if isinstance(node, SelectQuery) and node is not query:
                return "subquery may scan other shards"
            if (
                isinstance(node, FunctionCall)
                and node.name in _CONTEXT_FUNCTIONS
            ):
                return f"{node.name}() reads coordinator registries"
            if (
                isinstance(node, Variable)
                and node.name != binding.variable
                and self.schema.has_class(node.name)
            ):
                return f"references extent {node.name!r}"
        if self._has_non_count_aggregate(query):
            return "non-count aggregate needs a single-site fold"
        return None

    def _has_non_count_aggregate(self, query: SelectQuery) -> bool:
        aggregate = self._aggregate_call(query)
        if aggregate is None:
            return False
        return not self._count_pushdown(query)

    @staticmethod
    def _aggregate_call(query: SelectQuery) -> FunctionCall | None:
        """Mirror the evaluator's aggregate-projection detection."""
        if len(query.projection) != 1:
            return None
        item = query.projection[0]
        if item.alias is not None:
            return None
        expr = item.expression
        if not isinstance(expr, FunctionCall):
            return None
        if expr.name not in ("count", "size", "sum", "avg", "min", "max"):
            return None
        if len(expr.args) != 1:
            return None
        return expr

    def _count_pushdown(self, query: SelectQuery) -> bool:
        """``count(x)`` over the binding variable: per-shard sum is exact.

        Restricted to a bare-variable argument so the evaluator's
        per-row collection mapping (triggered when every value is a
        list) can never engage.
        """
        if query.distinct or query.order_by or query.limit is not None:
            return False
        call = self._aggregate_call(query)
        if call is None or call.name not in ("count", "size"):
            return False
        arg = call.args[0]
        return (
            isinstance(arg, Variable)
            and arg.name == query.bindings[0].variable
        )

    # -- pruning -------------------------------------------------------------

    def _prune(
        self, query: SelectQuery, binding: Binding
    ) -> tuple[tuple[str, ...], bool]:
        """Narrow the fan-out using key-attribute predicates.

        Mirrors the evaluator's index matcher: only top-level AND-chain
        conjuncts are considered, so pruning can never drop a row that
        an OR branch might admit.
        """
        candidates: set[str] | None = None
        for conjunct in self._conjuncts(query.where):
            shards = self._conjunct_shards(conjunct, binding.variable)
            if shards is None:
                continue
            candidates = (
                set(shards)
                if candidates is None
                else candidates & set(shards)
            )
        if candidates is None:
            return self.map.shards, False
        kept = tuple(s for s in self.map.shards if s in candidates)
        return kept, len(kept) < len(self.map.shards)

    @staticmethod
    def _conjuncts(where: Node | None):
        stack = [where] if where is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, Binary) and node.op == "and":
                stack.append(node.left)
                stack.append(node.right)
            elif node is not None:
                yield node

    def _conjunct_shards(
        self, node: Node, variable: str
    ) -> tuple[str, ...] | None:
        if not isinstance(node, Binary):
            return None
        sides = [(node.left, node.right), (node.right, node.left)]
        if node.op == "=":
            for attr_side, value_side in sides:
                if self._is_key_attr(attr_side, variable) and isinstance(
                    value_side, Literal
                ):
                    return self.map.shards_for_equality(value_side.value)
        elif node.op == "like":
            if self._is_key_attr(node.left, variable) and isinstance(
                node.right, Literal
            ):
                prefix = self._like_prefix(node.right.value)
                if prefix:
                    return self.map.shards_for_prefix(prefix)
        return None

    def _is_key_attr(self, node: Node, variable: str) -> bool:
        return (
            isinstance(node, AttributeAccess)
            and node.name == self.map.key_attr
            and isinstance(node.target, Variable)
            and node.target.name == variable
        )

    @staticmethod
    def _like_prefix(pattern: object) -> str | None:
        """Literal prefix of a LIKE pattern shaped ``prefix%``."""
        if not isinstance(pattern, str) or "_" in pattern:
            return None
        if not pattern.endswith("%"):
            return None
        prefix = pattern[:-1]
        if "%" in prefix or not prefix:
            return None
        return prefix
