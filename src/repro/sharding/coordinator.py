"""Coordinator-side execution of distributed POOL plans.

The coordinator owns the global OID allocator (placement must not
change object identity: the same logical database built on a 1-shard
and a 4-shard topology assigns identical OIDs, which is what lets the
topology differential suite demand byte-identical responses), the
OID → shard router, the shard map, and a :class:`~repro.engine.
federation.Federation` whose nodes are the shards — scatter reuses
federation's circuit breakers and deadline fan-out verbatim.

Mutations are funneled through the coordinator so both topologies take
the *same* code path: creates go through the owning shard's normal
``schema.create`` (events, rules, MVCC ingestion all fire), while
relationship instances are always installed through the low-level edge
path — even when both endpoints are co-located — because a cross-shard
edge cannot run endpoint liveness or cardinality validation and the
two topologies must not diverge on validation side effects.

Writes to the shard-key attribute relocate the object (and its
outgoing edges) to the shard the map now assigns, keeping the pruning
invariant: a predicate that pins a key range only needs the shards
whose ranges intersect it.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from ..core.identity import OidAllocator
from ..core.relationships import RelationshipInstance
from ..core.schema import Schema
from ..engine.database import PrometheusDB
from ..engine.federation import Federation
from ..errors import PrometheusError, SnapshotError
from ..mvcc.view import SnapshotSchema
from ..query import parse, typecheck
from ..query.evaluator import Evaluator, QueryContext, _distinct, _SortKey
from ..query.nodes import QueryPlanInfo, SelectQuery
from ..telemetry import DISABLED, Telemetry
from .planner import DistributedPlan, DistributedPlanner
from .router import OidRouter
from .shardmap import ShardMap


class ShardingError(PrometheusError):
    """Coordinator-level sharding failure (routing, topology)."""


class ShardExecutionError(ShardingError):
    """One or more shards failed during a fan-out.

    ``kinds`` carries the sorted, de-duplicated *exception type names*
    from the shards.  Messages may legitimately differ between
    topologies (a 4-shard layout can trip on a different row first),
    so deterministic comparisons use the kinds, not the text.
    """

    def __init__(self, kinds: list[str], detail: str = "") -> None:
        self.kinds = sorted(set(kinds))
        message = f"shard execution failed: {'/'.join(self.kinds)}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class _UnionRecords:
    """Duck-typed ``VersionStore`` over a prebuilt, OID-sorted record
    list — lets :class:`SnapshotSchema` materialize the gather view."""

    def __init__(self, items: list[tuple[int, dict[str, Any]]]) -> None:
        self._items = items

    def items_at(self, lsn: int):
        return iter(self._items)


class LocalShardClient:
    """In-process shard: the federation client surface plus the admin
    surface the coordinator and rebalancer need.

    Duck-compatible with :class:`~repro.engine.federation.
    RemoteDatabase` for everything federation calls, so shards sit
    directly in ``Federation.nodes`` and inherit breakers, retries and
    the deadline fan-out.
    """

    def __init__(self, name: str, db: PrometheusDB) -> None:
        self.name = name
        self.db = db

    # -- federation client surface ------------------------------------------

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        as_of: int | None = None,
    ) -> Any:
        return self.db.query(text, params=params, check=False, as_of=as_of)

    def query_with_lsn(
        self, text: str, params: dict[str, Any] | None = None
    ) -> tuple[Any, int]:
        return self.query(text, params), self.db.lsn

    def ping(self) -> dict[str, Any]:
        return {"status": "ok", "name": self.name}

    def replication_status(self) -> dict[str, Any]:
        return {"lsn": self.db.lsn}

    def classifications(self) -> list[str]:
        return []

    # -- shard admin surface -------------------------------------------------

    @property
    def lsn(self) -> int:
        return self.db.lsn

    def commit(self) -> None:
        self.db.commit()

    def has_object(self, oid: int) -> bool:
        return self.db.schema.has_object(oid)

    def get_attr(self, oid: int, name: str) -> Any:
        return self.db.schema.get_object(oid).get(name)

    def set_attr(self, oid: int, name: str, value: Any) -> None:
        self.db.schema.get_object(oid).set(name, value)

    def install_object(
        self, class_name: str, oid: int, attrs: dict[str, Any]
    ) -> None:
        """Create with a coordinator-assigned OID via the normal path
        (events fire, rules run, indexes and MVCC stay current)."""
        self.db.schema.create(class_name, _oid=oid, **attrs)

    def install_edge(
        self,
        rel_name: str,
        oid: int,
        origin_oid: int,
        destination_oid: int,
        attrs: dict[str, Any],
    ) -> None:
        """Low-level relationship install: mirrors ``Schema.relate``'s
        installation sequence but skips endpoint liveness and
        cardinality validation, which cannot see across shards.  The
        destination (or even the origin, mid-rebalance) may live
        elsewhere; the evaluator treats missing endpoints as null."""
        schema = self.db.schema
        relclass = schema.get_class(rel_name)
        rel = RelationshipInstance(
            oid,
            relclass,
            schema,
            relclass.defaults(),
            origin_oid=origin_oid,
            destination_oid=destination_oid,
        )
        schema._objects[oid] = rel
        schema._extents[relclass.name].add(oid)
        schema._dirty[oid] = rel
        rel._dirty = True
        schema.relationships.index(rel)
        self.db.indexes.note_installed(rel)
        for name, value in attrs.items():
            rel.set(name, value)

    def remove_object(self, oid: int) -> None:
        """Low-level removal for rebalancing: the object leaves this
        shard but keeps existing elsewhere, so no delete events fire
        and no edge cascade runs."""
        schema = self.db.schema
        obj = schema.get_object(oid)
        self.db.indexes.note_removed(obj)
        if isinstance(obj, RelationshipInstance):
            schema.relationships.unindex(obj)
        schema._remove_object(obj)

    def export_attrs(self, oid: int) -> dict[str, Any]:
        obj = self.db.schema.get_object(oid)
        return {
            name: obj.get(name)
            for name in obj.pclass.all_attributes()
        }

    def outgoing_edges(self, oid: int) -> list[dict[str, Any]]:
        """Edges whose origin is ``oid`` (they ride along on a move)."""
        out = []
        for rel in self.db.schema.relationships.outgoing(oid):
            out.append(
                {
                    "class": rel.pclass.name,
                    "oid": rel.oid,
                    "origin": rel.origin_oid,
                    "destination": rel.destination_oid,
                    "values": {
                        name: rel.get(name)
                        for name in rel.pclass.all_attributes()
                    },
                }
            )
        return sorted(out, key=lambda e: e["oid"])

    def oids_in_key_range(
        self, key_attr: str, lo: str | None, hi: str | None
    ) -> list[int]:
        """Non-relationship objects whose shard key falls in ``[lo, hi)``
        (hash-placed objects — null or non-string keys — never match)."""
        out = []
        for oid in sorted(self.db.schema._objects):
            obj = self.db.schema._objects[oid]
            if isinstance(obj, RelationshipInstance):
                continue
            if key_attr not in obj.pclass.all_attributes():
                continue
            value = obj.get(key_attr)
            if not isinstance(value, str):
                continue
            if lo is not None and value < lo:
                continue
            if hi is not None and value >= hi:
                continue
            out.append(oid)
        return out

    def export_records(
        self, class_names: list[str], lsn: int | None = None
    ) -> list[tuple[int, dict[str, Any]]]:
        """OID-sorted ``(oid, record)`` pairs for the polymorphic
        extents of ``class_names`` — live, or at a snapshot LSN."""
        schema = self._schema_at(lsn)
        if schema is None:
            return []
        out: dict[int, dict[str, Any]] = {}
        for name in class_names:
            if not schema.has_class(name):
                continue
            for obj in schema.extent(name):
                out[obj.oid] = Schema._to_record(schema, obj)
        return sorted(out.items())

    def resolve_oids(
        self, oids: list[int], lsn: int | None = None
    ) -> list[tuple[int, dict[str, Any]]]:
        """Batched OID resolution (the in-process analog of the HTTP
        ``POST /resolve`` ``oids`` fan-out)."""
        schema = self._schema_at(lsn)
        if schema is None:
            return []
        out = []
        for oid in sorted(oids):
            if schema.has_object(oid):
                obj = schema.get_object(oid)
                out.append((oid, Schema._to_record(schema, obj)))
        return out

    def _schema_at(self, lsn: int | None):
        if lsn is None:
            return self.db.schema
        if lsn < 0:
            # Sentinel from the coordinator: this shard had no commits
            # at the requested sequence point — nothing to read.
            return None
        view, _ = self.db._snapshot_view(lsn)
        return view


class ShardedSession:
    """Staged multi-op write session applied atomically at commit.

    Operations are staged in call order and applied in that order at
    :meth:`commit` — the same sequence on every topology, so both the
    1-shard and 4-shard databases end in the same logical state even
    when an op fails partway (the failure point is deterministic)."""

    def __init__(self, db: "ShardedDatabase") -> None:
        self._db = db
        self._ops: list[tuple[Any, ...]] = []
        self.closed = False

    def create(self, class_name: str, **attrs: Any) -> int:
        oid = self._db.allocator.allocate()
        self._ops.append(("create", oid, class_name, dict(attrs)))
        return oid

    def set(self, oid: int, name: str, value: Any) -> None:
        self._ops.append(("set", oid, name, value))

    def relate(
        self, rel_name: str, origin_oid: int, destination_oid: int,
        **attrs: Any,
    ) -> int:
        oid = self._db.allocator.allocate()
        self._ops.append(
            ("relate", oid, rel_name, origin_oid, destination_oid,
             dict(attrs))
        )
        return oid

    def commit(self) -> int:
        if self.closed:
            raise ShardingError("session already closed")
        self.closed = True
        return self._db._apply_session(self._ops)

    def abort(self) -> None:
        self.closed = True
        self._ops.clear()


class ShardedDatabase:
    """A set of shard databases behind one query/mutation facade.

    ``ddl`` is a callable applied to every shard schema *and* the
    coordinator's meta schema (used for typechecking, central merge
    evaluation, and the gather view's class registry — sharing the
    registry is what keeps downcasts working on gathered objects).
    ``index_ddl`` optionally receives each shard :class:`PrometheusDB`
    to create per-shard indexes.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        ddl: Callable[[Schema], None],
        index_ddl: Callable[[PrometheusDB], None] | None = None,
        telemetry: Telemetry = DISABLED,
        deadline: float | None = 30.0,
        breaker_threshold: int = 5,
    ) -> None:
        self.map = shard_map
        self.telemetry = telemetry
        self.allocator = OidAllocator()
        self.router = OidRouter()
        self.meta = Schema(None, name="coordinator")
        ddl(self.meta)
        self.shards: dict[str, LocalShardClient] = {}
        for name in shard_map.shards:
            db = PrometheusDB(telemetry=DISABLED)
            ddl(db.schema)
            db.schema._allocator = self.allocator
            if index_ddl is not None:
                index_ddl(db)
            self.shards[name] = LocalShardClient(name, db)
        self.federation = Federation(
            nodes=dict(self.shards),  # type: ignore[arg-type]
            retry=None,
            deadline=deadline,
            breaker_threshold=breaker_threshold,
            telemetry=telemetry,
        )
        #: Global commit history: sequence number -> per-shard LSN
        #: vector.  ``as_of`` sequence numbers index into this.
        self._history: list[dict[str, int]] = []
        self._baseline = {
            name: client.lsn for name, client in self.shards.items()
        }
        self._gauge_epoch()

    # -- mutations -----------------------------------------------------------

    def create(self, class_name: str, **attrs: Any) -> int:
        oid = self.allocator.allocate()
        self._install_create(oid, class_name, attrs)
        return oid

    def relate(
        self, rel_name: str, origin_oid: int, destination_oid: int,
        **attrs: Any,
    ) -> int:
        oid = self.allocator.allocate()
        self._install_relate(
            oid, rel_name, origin_oid, destination_oid, attrs
        )
        return oid

    def set(self, oid: int, name: str, value: Any) -> None:
        shard = self._owner(oid)
        self.shards[shard].set_attr(oid, name, value)
        if name == self.map.key_attr:
            self._maybe_relocate(oid)

    def get(self, oid: int, name: str) -> Any:
        return self.shards[self._owner(oid)].get_attr(oid, name)

    def session(self) -> ShardedSession:
        return ShardedSession(self)

    def commit(self) -> int:
        """Commit every shard (sorted order) and record the global
        sequence point; returns the new sequence number, usable as
        ``as_of``."""
        for name in sorted(self.shards):
            self.shards[name].commit()
        self._history.append(
            {name: client.lsn for name, client in self.shards.items()}
        )
        return len(self._history)

    @property
    def seq(self) -> int:
        return len(self._history)

    def _install_create(
        self, oid: int, class_name: str, attrs: dict[str, Any]
    ) -> None:
        shard = self.map.route(attrs.get(self.map.key_attr), oid)
        self.shards[shard].install_object(class_name, oid, attrs)
        self.router.assign(oid, shard)

    def _install_relate(
        self,
        oid: int,
        rel_name: str,
        origin_oid: int,
        destination_oid: int,
        attrs: dict[str, Any],
    ) -> None:
        if not self.meta.has_class(rel_name):
            raise ShardingError(f"unknown relationship {rel_name!r}")
        shard = self._owner(origin_oid)
        self.shards[shard].install_edge(
            rel_name, oid, origin_oid, destination_oid, attrs
        )
        self.router.assign(oid, shard)

    def _apply_session(self, ops: list[tuple[Any, ...]]) -> int:
        key_touched: list[int] = []
        for op in ops:
            if op[0] == "create":
                _, oid, class_name, attrs = op
                self._install_create(oid, class_name, attrs)
            elif op[0] == "set":
                _, oid, name, value = op
                self.shards[self._owner(oid)].set_attr(oid, name, value)
                if name == self.map.key_attr:
                    key_touched.append(oid)
            elif op[0] == "relate":
                _, oid, rel_name, origin, dest, attrs = op
                self._install_relate(oid, rel_name, origin, dest, attrs)
        for oid in sorted(set(key_touched)):
            self._maybe_relocate(oid)
        return self.commit()

    def _owner(self, oid: int) -> str:
        shard = self.router.shard_of(oid)
        if shard is None:
            raise ShardingError(f"oid {oid} is not routed to any shard")
        return shard

    # -- relocation ----------------------------------------------------------

    def _maybe_relocate(self, oid: int) -> None:
        """Move an object whose shard key changed to its new home.

        Keeps the pruning invariant — an object's placement always
        matches the current map — without which a key-range predicate
        could silently miss rows on a pruned-out shard."""
        current = self._owner(oid)
        client = self.shards[current]
        key = client.get_attr(oid, self.map.key_attr)
        target = self.map.route(key, oid)
        if target == current:
            return
        self.move_object(oid, current, target)

    def move_object(self, oid: int, source: str, target: str) -> int:
        """Move one object and its outgoing edges between shards.
        Returns the number of records moved."""
        src = self.shards[source]
        dst = self.shards[target]
        obj = src.db.schema.get_object(oid)
        class_name = obj.pclass.name
        attrs = src.export_attrs(oid)
        edges = src.outgoing_edges(oid)
        for edge in edges:
            src.remove_object(edge["oid"])
        src.remove_object(oid)
        dst.install_object(class_name, oid, attrs)
        self.router.move(oid, target)
        for edge in edges:
            dst.install_edge(
                edge["class"],
                edge["oid"],
                edge["origin"],
                edge["destination"],
                edge["values"],
            )
            self.router.move(edge["oid"], target)
        if self.telemetry.enabled:
            self.telemetry.registry.counter(
                "repro_shard_moved_objects_total",
                help="Objects relocated between shards",
            ).inc(1 + len(edges))
        return 1 + len(edges)

    def rehome_misplaced(self) -> int:
        """Move every object whose placement no longer matches the map.

        A map change can alter more than the reassigned range: when a
        shard gains or loses range ownership the hash-fallback *ring*
        changes too, and unclassified objects re-hash.  Returns the
        number of records moved (objects plus riding edges)."""
        moved = 0
        for name in sorted(self.shards):
            schema = self.shards[name].db.schema
            for oid in sorted(schema._objects):
                obj = schema._objects.get(oid)
                if obj is None or isinstance(obj, RelationshipInstance):
                    continue
                key = (
                    obj.get(self.map.key_attr)
                    if self.map.key_attr in obj.pclass.all_attributes()
                    else None
                )
                target = self.map.route(key, oid)
                if target != name:
                    moved += self.move_object(oid, name, target)
        return moved

    # -- topology ------------------------------------------------------------

    def adopt_map(self, new_map: ShardMap) -> None:
        """Install an evolved shard map (post-split/rebalance) and stamp
        its epoch into every persistent shard log."""
        if new_map.epoch <= self.map.epoch:
            raise ShardingError(
                f"shard-map epoch must rise: {new_map.epoch} <= "
                f"{self.map.epoch}"
            )
        missing = set(new_map.shards) - set(self.shards)
        if missing:
            raise ShardingError(
                f"map references unknown shards: {sorted(missing)}"
            )
        self.map = new_map
        blob = new_map.to_blob()
        for name in sorted(self.shards):
            store = self.shards[name].db.store
            if store is not None:
                store.stamp_shard_map(new_map.epoch, blob)
        self._gauge_epoch()

    def _gauge_epoch(self) -> None:
        if self.telemetry.enabled:
            self.telemetry.registry.gauge(
                "repro_shard_map_epoch",
                help="Current shard-map epoch on the coordinator",
            ).set(self.map.epoch)

    @property
    def shard_map_epoch(self) -> int:
        return self.map.epoch

    def describe(self) -> dict[str, Any]:
        """Topology summary (CLI ``.shardmap``)."""
        return {
            "map": self.map.describe(),
            "placement": self.router.counts(),
            "objects": len(self.router),
            "seq": self.seq,
        }

    # -- queries -------------------------------------------------------------

    def query(
        self,
        text: str,
        params: dict[str, Any] | None = None,
        check: bool = True,
        as_of: int | None = None,
    ) -> Any:
        ast = parse(text)
        if check:
            typecheck(self.meta, ast)
        vector = self._vector_at(as_of)
        plan = DistributedPlanner(self.meta, self.map).plan(ast, as_of)
        self._count_query(plan)
        if plan.mode == "scatter":
            return self._run_scatter(ast, plan, params)
        if plan.mode == "scatter_count":
            return self._run_scatter_count(plan, params)
        return self._run_gather(ast, params, vector, as_of)

    def explain(
        self, text: str, as_of: int | None = None
    ) -> dict[str, Any]:
        """Distributed EXPLAIN: the physical plan, not the rows."""
        ast = parse(text)
        self._vector_at(as_of)
        plan = DistributedPlanner(self.meta, self.map).plan(ast, as_of)
        out = plan.as_dict()
        out["shard_map_epoch"] = self.map.epoch
        out["total_shards"] = len(self.map.shards)
        return out

    def _vector_at(self, as_of: int | None) -> dict[str, int] | None:
        if as_of is None:
            return None
        if not isinstance(as_of, int) or isinstance(as_of, bool):
            raise SnapshotError(
                f"as_of must be an integer sequence, got {as_of!r}"
            )
        if as_of < 1 or as_of > len(self._history):
            raise SnapshotError(
                f"sequence {as_of} not available "
                f"(history is 1..{len(self._history)})"
            )
        return self._history[as_of - 1]

    def _count_query(self, plan: DistributedPlan) -> None:
        if not self.telemetry.enabled:
            return
        registry = self.telemetry.registry
        registry.counter(
            "repro_shard_queries_total",
            {"mode": plan.mode},
            help="Distributed queries by physical-plan mode",
        ).inc()
        registry.counter(
            "repro_shard_fanout_total",
            help="Per-shard requests issued by distributed queries",
        ).inc(len(plan.shards))
        if plan.pruned:
            registry.counter(
                "repro_shard_pruned_total",
                help="Queries whose fan-out was narrowed by the shard key",
            ).inc()

    # -- scatter -------------------------------------------------------------

    def _fanout(
        self,
        shard_names: tuple[str, ...],
        call: Callable[[LocalShardClient], Any],
    ) -> dict[str, Any]:
        """Run ``call`` against each shard through federation's breaker
        guard and deadline fan-out; semantic (PrometheusError) failures
        are tagged per shard and re-raised as one deterministic
        :class:`ShardExecutionError`."""

        def guarded(client: LocalShardClient) -> tuple[str, Any, str]:
            try:
                return ("ok", call(client), "")
            except PrometheusError as exc:
                return ("error", None, type(exc).__name__)

        calls = {
            name: (
                lambda n=name: self.federation._call_node(
                    n, lambda: guarded(self.shards[n])
                )
            )
            for name in shard_names
        }
        raw = self.federation._scatter(calls)
        results: dict[str, Any] = {}
        kinds: list[str] = []
        infra: list[str] = []
        for name in sorted(raw):
            outcome, error = raw[name]
            if error:
                infra.append(f"{name}: {error}")
                continue
            status, value, kind = outcome
            if status == "error":
                kinds.append(kind)
            else:
                results[name] = value
        if infra:
            raise ShardExecutionError(
                ["__infra__"], detail="; ".join(infra)
            )
        if kinds:
            raise ShardExecutionError(kinds)
        return results

    def _run_scatter(
        self,
        ast: SelectQuery,
        plan: DistributedPlan,
        params: dict[str, Any] | None,
    ) -> list[Any]:
        per_shard = self._fanout(
            plan.shards,
            lambda client: client.query(plan.pushed_text, params),
        )
        merged: list[Any] = []
        for name in sorted(per_shard):
            rows = per_shard[name]
            if not isinstance(rows, list):
                raise ShardExecutionError(
                    ["__protocol__"],
                    detail=f"{name} returned {type(rows).__name__}",
                )
            merged.extend(rows)
        # Re-create the single-database iteration order (extents yield
        # OIDs ascending), then fold exactly as the naive evaluator
        # does: sort keys and projection computed per row, stable sort,
        # distinct, limit.
        merged.sort(key=lambda obj: obj.oid)
        evaluator = Evaluator(
            QueryContext(
                schema=self.meta,
                params=params or {},
                plan=QueryPlanInfo(),
            )
        )
        variable = ast.bindings[0].variable
        kept: list[tuple[tuple, Any]] = []
        for obj in merged:
            env = {variable: obj}
            keys = tuple(
                _SortKey(
                    evaluator._eval(item.expression, env),
                    item.descending,
                )
                for item in ast.order_by
            )
            kept.append((keys, evaluator._project(ast, env)))
        if ast.order_by:
            kept.sort(key=lambda pair: pair[0])
        results = [value for _, value in kept]
        if ast.distinct:
            results = _distinct(results)
        if ast.limit is not None:
            results = results[: ast.limit]
        return results

    def _run_scatter_count(
        self, plan: DistributedPlan, params: dict[str, Any] | None
    ) -> list[int]:
        per_shard = self._fanout(
            plan.shards,
            lambda client: client.query(plan.pushed_text, params),
        )
        total = 0
        for name in sorted(per_shard):
            rows = per_shard[name]
            if not isinstance(rows, list) or len(rows) != 1:
                raise ShardExecutionError(
                    ["__protocol__"],
                    detail=f"{name} count returned {rows!r}",
                )
            total += int(rows[0])
        return [total]

    # -- gather --------------------------------------------------------------

    def _run_gather(
        self,
        ast: Any,
        params: dict[str, Any] | None,
        vector: dict[str, int] | None,
        as_of: int | None,
    ) -> Any:
        view = self._union_view(ast, vector, as_of)
        context = QueryContext(
            schema=view,  # type: ignore[arg-type]
            params=params or {},
            plan=QueryPlanInfo(),
        )
        return Evaluator(context).run(ast)

    def _union_view(
        self,
        ast: Any,
        vector: dict[str, int] | None,
        as_of: int | None,
    ) -> SnapshotSchema:
        """Materialize a coordinator-side snapshot of every extent the
        query can touch, plus all relationship extents and one round of
        cross-shard endpoint resolution (all edges are fetched, so one
        round closes the reachable object set for any traversal
        depth)."""
        class_names = sorted(
            {
                name
                for name in self._referenced_classes(ast)
                if self.meta.has_class(name)
            }
            | {rc.name for rc in self.meta.relationship_classes()}
        )
        items: dict[int, dict[str, Any]] = {}
        # Fan out over every *physical* shard, not just the current
        # map's range owners: a snapshot read may predate a rebalance
        # that removed a shard from the ring, and its history lives on.
        exports = self._fanout(
            tuple(sorted(self.shards)),
            lambda client: client.export_records(
                class_names, self._shard_lsn(client.name, vector)
            ),
        )
        for name in sorted(exports):
            for oid, record in exports[name]:
                items[oid] = record
        self._resolve_endpoints(items, vector)
        union = _UnionRecords(sorted(items.items()))
        return SnapshotSchema(
            self.meta, union, as_of if as_of is not None else self.seq
        )

    def _shard_lsn(
        self, name: str, vector: dict[str, int] | None
    ) -> int | None:
        """Snapshot LSN for one shard — None for a live read, and a
        pre-first-commit shard exports nothing (sentinel -1 handled by
        the client via the baseline check below)."""
        if vector is None:
            return None
        lsn = vector[name]
        if lsn <= self._baseline[name]:
            # The shard had not committed anything by this sequence
            # point; there is no snapshot to pin, and nothing to read.
            return -1
        return lsn

    def _resolve_endpoints(
        self,
        items: dict[int, dict[str, Any]],
        vector: dict[str, int] | None,
    ) -> None:
        """Fetch records for edge endpoints living on other shards, in
        one batched fan-out (the OID → shard routed ``/resolve``)."""
        missing: set[int] = set()
        for record in items.values():
            for key in ("_origin", "_destination"):
                oid = record.get(key)
                if isinstance(oid, int) and oid not in items:
                    missing.add(oid)
            participants = record.get("_participants")
            if isinstance(participants, dict):
                for oid in participants.values():
                    if isinstance(oid, int) and oid not in items:
                        missing.add(oid)
        if not missing:
            return
        if vector is None:
            groups = self.router.group(missing)
        else:
            # Historical read: the router reflects *current* placement,
            # but the record may have lived elsewhere at that sequence
            # point — ask every shard's snapshot.
            ordered = sorted(missing)
            groups = {name: ordered for name in sorted(self.shards)}
        if not groups:
            return
        if self.telemetry.enabled:
            self.telemetry.registry.counter(
                "repro_shard_resolve_batches_total",
                help="Batched cross-shard endpoint resolutions",
            ).inc(len(groups))
        resolved = self._fanout(
            tuple(groups),
            lambda client: client.resolve_oids(
                groups[client.name],
                self._shard_lsn(client.name, vector),
            ),
        )
        for name in sorted(resolved):
            for oid, record in resolved[name]:
                items.setdefault(oid, record)

    def _referenced_classes(self, ast: Any) -> set[str]:
        from .planner import _walk
        from ..query.nodes import Variable

        return {
            node.name
            for node in _walk(ast)
            if isinstance(node, Variable)
        }

    # -- serialization helpers ----------------------------------------------

    def jsonable_result(self, result: Any) -> str:
        """Canonical JSON for the topology differential suite."""
        from ..engine.handlers import jsonable

        return json.dumps(jsonable(result), sort_keys=True)
