"""Extent rebalancing: ship a key range between shards over PLSB frames.

A rebalance moves every object whose shard-key falls in a half-open
range ``[lo, hi)`` — plus the outgoing relationship instances that ride
with their origin — to a target shard, then installs a new shard map
whose epoch has risen.  The batches travel through the *replication*
frame codec (:mod:`repro.replication.stream`): each frame is CRC-32
gated, so a corrupt hop is detected before any record is installed, and
a persistent deployment can reuse its existing frame transport
unchanged.

The epoch bump is the cache-safety handshake: the response cache stamps
every pre-serialized body with the shard-map epoch (see
``HttpHandlers._stamp``), so no client can be served a body computed
against the old placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..replication.stream import decode_frame, encode_frame
from ..storage.serialization import decode_record, encode_record
from .coordinator import ShardedDatabase, ShardingError


@dataclass
class RebalanceReport:
    """What one :meth:`ExtentRebalancer.move_range` call did."""

    lo: str | None
    hi: str | None
    target: str
    moved_objects: int = 0
    moved_edges: int = 0
    frames: int = 0
    bytes_shipped: int = 0
    old_epoch: int = 0
    new_epoch: int = 0
    rehomed: int = 0
    sources: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "range": [self.lo, self.hi],
            "target": self.target,
            "sources": self.sources,
            "moved_objects": self.moved_objects,
            "moved_edges": self.moved_edges,
            "frames": self.frames,
            "bytes_shipped": self.bytes_shipped,
            "rehomed": self.rehomed,
            "epoch": [self.old_epoch, self.new_epoch],
        }


class ExtentRebalancer:
    """Moves key ranges between the shards of a :class:`ShardedDatabase`."""

    def __init__(self, db: ShardedDatabase, batch_size: int = 64) -> None:
        if batch_size < 1:
            raise ShardingError("batch_size must be >= 1")
        self.db = db
        self.batch_size = batch_size

    # Test seam: the wire between encode and decode.  Subclasses (and
    # fault tests) may corrupt or drop frames here; the CRC gate in
    # ``decode_frame`` must then refuse the batch before any install.
    def _ship(self, frame: bytes) -> bytes:
        return frame

    def move_range(
        self, lo: str | None, hi: str | None, target: str
    ) -> RebalanceReport:
        """Move ``[lo, hi)`` to ``target`` and install the bumped map.

        The range must exactly match one range of the current map
        (split first if needed); the map is only adopted after every
        frame applied cleanly, so a CRC failure aborts with placement
        and map still consistent."""
        db = self.db
        if target not in db.shards:
            raise ShardingError(f"unknown target shard {target!r}")
        new_map = db.map.reassign(lo, hi, target)
        report = RebalanceReport(
            lo=lo,
            hi=hi,
            target=target,
            old_epoch=db.map.epoch,
            new_epoch=new_map.epoch,
        )
        cursor = 0  # frames carry a synthetic, contiguous byte range
        for source in sorted(db.shards):
            if source == target:
                continue
            client = db.shards[source]
            oids = client.oids_in_key_range(db.map.key_attr, lo, hi)
            if not oids:
                continue
            report.sources.append(source)
            for start in range(0, len(oids), self.batch_size):
                batch = oids[start : start + self.batch_size]
                doc = self._collect(source, batch)
                payload = encode_record(doc)
                frame = encode_frame(
                    cursor,
                    cursor + len(payload),
                    payload,
                    epoch=new_map.epoch,
                )
                cursor += len(payload)
                report.frames += 1
                report.bytes_shipped += len(frame)
                # decode_frame re-verifies the CRC — a corrupted hop
                # raises ReplicationError before anything is installed.
                _, _, blob, _ = decode_frame(self._ship(frame))
                applied = decode_record(bytes(blob))
                self._apply(source, target, applied)
                report.moved_objects += len(applied["objects"])
                report.moved_edges += len(applied["edges"])
        db.adopt_map(new_map)
        # Range ownership changed, so the hash-fallback ring may have
        # too: re-home unclassified objects whose hash slot moved.
        report.rehomed = db.rehome_misplaced()
        if db.telemetry.enabled:
            db.telemetry.registry.counter(
                "repro_shard_rebalance_total",
                help="Completed shard rebalance operations",
            ).inc()
        db.commit()
        return report

    def _collect(self, source: str, oids: list[int]) -> dict[str, Any]:
        client = self.db.shards[source]
        objects = []
        edges = []
        for oid in oids:
            obj = client.db.schema.get_object(oid)
            objects.append(
                {
                    "class": obj.pclass.name,
                    "oid": oid,
                    "values": client.export_attrs(oid),
                }
            )
            edges.extend(client.outgoing_edges(oid))
        return {"objects": objects, "edges": edges}

    def _apply(
        self, source: str, target: str, doc: dict[str, Any]
    ) -> None:
        db = self.db
        src = db.shards[source]
        dst = db.shards[target]
        for edge in doc["edges"]:
            src.remove_object(edge["oid"])
        for record in doc["objects"]:
            src.remove_object(record["oid"])
            dst.install_object(
                record["class"], record["oid"], record["values"]
            )
            db.router.move(record["oid"], target)
        for edge in doc["edges"]:
            dst.install_edge(
                edge["class"],
                edge["oid"],
                edge["origin"],
                edge["destination"],
                edge["values"],
            )
            db.router.move(edge["oid"], target)
