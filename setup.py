"""Legacy setup shim: enables `pip install -e .` in offline environments
that lack the `wheel` package required by PEP 660 editable installs."""

from setuptools import setup

setup()
